// srv_txn_latency — open-loop request latency vs offered load for the txn
// serving workload (src/apps/txn over src/load).
//
// The bench first measures the machine's serving capacity with a batch probe
// (every request arrives at cycle 0; capacity = requests / makespan), then
// sweeps an open-loop Poisson arrival trace at fixed fractions of that
// capacity, through and past saturation. Because arrivals are independent of
// completions, the sweep reproduces the canonical open-loop latency curve:
//
//   below saturation   p99 nearly flat (queueing is transient),
//   at saturation      the knee,
//   past saturation    the backlog grows for the whole trace and p99 blows
//                      up super-linearly while served/offered drops below 1.
//
// The headline (past-saturation) point honours --profile, --race-check,
// --adapt and --latency-target, so the adaptive runtime's latency objective
// can be watched exactly where tail latency is worst. Everything — arrival
// stamps, transaction picks, scheduling — is seeded and simulated, so the
// whole curve is deterministic.
#include <cstdio>

#include "apps/txn/txn.hpp"
#include "bench_common.hpp"

using namespace cool;

namespace {

/// Offered-load fractions of probed capacity, through and past saturation.
constexpr double kFracs[] = {0.25, 0.5, 0.7, 0.85, 1.0, 1.2, 1.5};
constexpr double kQuickFracs[] = {0.5, 0.85, 1.5};

struct Point {
  double frac = 0.0;
  apps::txn::Result res;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "srv_txn_latency",
      "Open-loop txn serving: latency percentiles vs offered load");
  opt.add_int("warehouses", 14,
              "warehouses (Zipf population; default is a multiple of the "
              "7 serving processors at --procs=8, so theta=0 is uniform)");
  opt.add_int("districts", 4, "districts per warehouse");
  opt.add_int("items", 64, "stock slots per district");
  opt.add_int("lines", 4, "order lines per request");
  opt.add_double("theta", 0.0, "Zipf skew over warehouses (0 = uniform)");
  opt.add_int("requests", 2048, "requests per sweep point");
  opt.add_int("think", 200, "compute cycles per request");
  opt.add_string("arrival", "poisson",
                 "arrival process: poisson | bursty | diurnal");
  opt.add_flag("quick", "smaller trace and fewer sweep points");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  const bool quick = opt.flag("quick");

  apps::txn::Config cfg;
  cfg.warehouses = quick ? 7 : static_cast<int>(opt.get_int("warehouses"));
  cfg.districts = static_cast<int>(opt.get_int("districts"));
  cfg.items = static_cast<int>(opt.get_int("items"));
  cfg.lines = static_cast<int>(opt.get_int("lines"));
  cfg.theta = opt.get_double("theta");
  cfg.think_cycles = static_cast<std::uint64_t>(opt.get_int("think"));
  cfg.arrivals.kind = load::parse_arrival_kind(opt.get_string("arrival"));
  cfg.arrivals.n_requests =
      quick ? 384 : static_cast<std::uint32_t>(opt.get_int("requests"));

  // Capacity probe: everything arrives at once, so the makespan measures
  // pure service capacity (no arrival idle time). Latency numbers from this
  // run are meaningless (they include the batch queueing) and are discarded.
  apps::txn::Config probe = cfg;
  probe.arrivals.rate_per_kcycle = 1e6;
  double capacity = 0.0;
  {
    Runtime rt = bench::make_runtime(procs, apps::txn::policy_for(probe));
    const apps::txn::Result r = apps::txn::run(rt, probe);
    capacity = r.run.sim_cycles > 0
                   ? 1000.0 * static_cast<double>(cfg.arrivals.n_requests) /
                         static_cast<double>(r.run.sim_cycles)
                   : 0.0;
  }

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf(
        "# txn open-loop latency vs offered load, P=%u (W=%d D=%d theta=%.2f "
        "%s, %llu req/point)\n"
        "# capacity probe: %.3f req/kcycle\n",
        procs, cfg.warehouses, cfg.districts, cfg.theta,
        load::arrival_kind_name(cfg.arrivals.kind),
        static_cast<unsigned long long>(cfg.arrivals.n_requests), capacity);
  }

  const double* fracs = quick ? kQuickFracs : kFracs;
  const std::size_t n_fracs = quick ? sizeof kQuickFracs / sizeof kQuickFracs[0]
                                    : sizeof kFracs / sizeof kFracs[0];

  util::Table t({"load", "offered/kcyc", "served/kcyc", "ratio", "p50(kcyc)",
                 "p99(kcyc)", "p999(kcyc)", "max-inflight"});
  std::vector<Point> points;
  points.reserve(n_fracs);
  for (std::size_t i = 0; i < n_fracs; ++i) {
    apps::txn::Config pc = cfg;
    pc.arrivals.rate_per_kcycle = fracs[i] * capacity;
    const bool headline = i + 1 == n_fracs;
    // The headline (deepest-overload) point honours the analysis flags; the
    // rest of the curve runs the plain runtime so the sweep stays comparable.
    Runtime rt = headline
                     ? bench::make_runtime(procs, apps::txn::policy_for(pc), opt)
                     : bench::make_runtime(procs, apps::txn::policy_for(pc));
    Point pt;
    pt.frac = fracs[i];
    pt.res = apps::txn::run(rt, pc);
    std::uint64_t max_inflight = 0;
    for (const std::uint64_t v : pt.res.inflight) {
      if (v > max_inflight) max_inflight = v;
    }
    char label[16];
    std::snprintf(label, sizeof label, "%.2fx", fracs[i]);
    t.row()
        .cell(label)
        .cell(pt.res.offered_per_kcycle(), 3)
        .cell(pt.res.served_per_kcycle(), 3)
        .cell(pt.res.served_ratio(), 3)
        .cell(static_cast<double>(pt.res.latency.quantile(0.5)) / 1e3, 3)
        .cell(static_cast<double>(pt.res.latency.quantile(0.99)) / 1e3, 3)
        .cell(static_cast<double>(pt.res.latency.quantile(0.999)) / 1e3, 3)
        .cell(max_inflight);
    if (headline) {
      rep.obs_from(pt.res.run);
      rep.profile_from(rt);
    }
    points.push_back(std::move(pt));
  }

  // Named sweep points for the shape summary. Every mode's fraction list
  // contains 0.5, 0.85 and a >1 tail, so the keys exist in quick and full.
  auto at = [&](double frac) -> const apps::txn::Result* {
    for (const Point& p : points) {
      if (p.frac == frac) return &p.res;
    }
    return nullptr;
  };
  const apps::txn::Result* lo = at(0.5);
  const apps::txn::Result* knee = at(0.85);
  const apps::txn::Result& sat = points.back().res;
  const double p99_lo =
      lo != nullptr ? static_cast<double>(lo->latency.quantile(0.99)) : 0.0;
  const double p99_knee =
      knee != nullptr ? static_cast<double>(knee->latency.quantile(0.99)) : 0.0;
  const double p99_sat = static_cast<double>(sat.latency.quantile(0.99));

  rep.table(t);
  if (rep.text()) {
    std::printf(
        "\nshape: p99 %.2f kcyc at 0.85x capacity (%.2fx the 0.5x-load p99); "
        "past saturation p99 %.2f kcyc (%.1fx), served ratio %.2f\n",
        p99_knee / 1e3, p99_lo > 0.0 ? p99_knee / p99_lo : 0.0, p99_sat / 1e3,
        p99_knee > 0.0 ? p99_sat / p99_knee : 0.0, sat.served_ratio());
  }
  rep.shape("peak_capacity_kcyc", capacity);
  rep.shape("p99_frac50", p99_lo);
  rep.shape("p99_frac85", p99_knee);
  rep.shape("p99_past_sat", p99_sat);
  rep.shape("p99_flat_ratio", p99_lo > 0.0 ? p99_knee / p99_lo : 0.0);
  rep.shape("p99_blowup_ratio", p99_knee > 0.0 ? p99_sat / p99_knee : 0.0);
  rep.shape("served_ratio_past_sat", sat.served_ratio());
  return rep.finish();
}
