// Ablation — stealing policies (paper §4.2 and the §6.3 cluster experiment).
//
// Panel Cholesky under the spectrum of stealing policies: no stealing at
// all, default (hint-free tasks and unpinned sets only), stealing pinned
// work anywhere, cluster-first, and cluster-only. Shows the locality /
// load-balance tradeoff the paper discusses: stealing pinned tasks balances
// load but turns local references remote; restricting theft to the cluster
// recovers the locality.
#include <cstdio>

#include "apps/cholesky/panel.hpp"
#include "bench_common.hpp"

using namespace cool;
using namespace cool::apps::cholesky;

int main(int argc, char** argv) {
  auto opt = bench::standard_options(
      "abl_steal_policy", "Stealing-policy ablation on Panel Cholesky");
  opt.add_int("panels", 192, "number of panels");
  if (!opt.parse(argc, argv)) return 0;

  PanelConfig cfg;
  cfg.n_panels = static_cast<int>(opt.get_int("panels"));
  cfg.variant = PanelVariant::kDistrAff;
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));

  struct Row {
    const char* name;
    sched::Policy pol;
  };
  sched::Policy base = panel_policy_for(PanelVariant::kDistrAff, procs);

  std::vector<Row> rows;
  {
    Row r{"no stealing", base};
    r.pol.steal_enabled = false;
    r.pol.steal_whole_sets = false;  // validate_policy: steal flags need
                                     // steal_enabled.
    rows.push_back(r);
  }
  rows.push_back({"default (unpinned only)", base});
  {
    Row r{"steal pinned anywhere", base};
    r.pol.steal_object_tasks = true;
    r.pol.steal_pinned_sets = true;
    rows.push_back(r);
  }
  {
    Row r{"steal pinned, cluster-first", base};
    r.pol.steal_object_tasks = true;
    r.pol.steal_pinned_sets = true;
    r.pol.cluster_first = true;
    rows.push_back(r);
  }
  if (topo::MachineConfig::dash(procs).n_clusters() > 1) {
    Row r{"steal pinned, cluster-only", base};
    r.pol.steal_object_tasks = true;
    r.pol.steal_pinned_sets = true;
    r.pol.cluster_only = true;
    rows.push_back(r);
  }
  {
    Row r{"no whole-set stealing", base};
    r.pol.steal_whole_sets = false;
    rows.push_back(r);
  }

  bench::Report rep(opt);
  if (rep.text()) {
    std::printf("# Panel Cholesky (%d panels), Distr+Aff hints, P=%u\n",
                cfg.n_panels, procs);
  }
  util::Table t({"policy", "cycles(M)", "local-miss%", "steals",
                 "remote-cluster", "tasks-stolen"});
  for (const Row& row : rows) {
    Runtime rt = bench::make_runtime(procs, row.pol);
    const PanelResult r = run_panel(rt, cfg);
    t.row()
        .cell(row.name)
        .cell(static_cast<double>(r.run.sim_cycles) / 1e6, 2)
        .cell(100.0 * apps::local_fraction(r.run.mem), 1)
        .cell(r.run.sched.steals)
        .cell(r.run.sched.remote_cluster_steals)
        .cell(r.run.sched.tasks_stolen);
  }
  rep.table(t);
  return rep.finish();
}
