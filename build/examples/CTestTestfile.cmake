# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--procs=8" "--chunks=16" "--chunk-kb=8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat "/root/repo/build/examples/heat_diffusion" "--procs=8" "--n=64" "--steps=2" "--trace")
set_tests_properties(example_heat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_nodistr "/root/repo/build/examples/heat_diffusion" "--procs=8" "--n=64" "--steps=2" "--no-distribute")
set_tests_properties(example_heat_nodistr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wire_router "/root/repo/build/examples/wire_router" "--procs=8" "--wires-per-region=16" "--iterations=2")
set_tests_properties(example_wire_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_solver "/root/repo/build/examples/sparse_solver" "--procs=8" "--panels=32")
set_tests_properties(example_sparse_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline_monitor" "--items=100")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_threads "/root/repo/build/examples/pipeline_monitor" "--items=100" "--threads")
set_tests_properties(example_pipeline_threads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nbody "/root/repo/build/examples/nbody" "--procs=8" "--bodies=512" "--steps=1")
set_tests_properties(example_nbody PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
