file(REMOVE_RECURSE
  "CMakeFiles/sparse_solver.dir/sparse_solver.cpp.o"
  "CMakeFiles/sparse_solver.dir/sparse_solver.cpp.o.d"
  "sparse_solver"
  "sparse_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
