file(REMOVE_RECURSE
  "CMakeFiles/wire_router.dir/wire_router.cpp.o"
  "CMakeFiles/wire_router.dir/wire_router.cpp.o.d"
  "wire_router"
  "wire_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
