# Empty compiler generated dependencies file for wire_router.
# This may be replaced when dependencies are built.
