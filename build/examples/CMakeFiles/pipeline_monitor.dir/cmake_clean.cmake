file(REMOVE_RECURSE
  "CMakeFiles/pipeline_monitor.dir/pipeline_monitor.cpp.o"
  "CMakeFiles/pipeline_monitor.dir/pipeline_monitor.cpp.o.d"
  "pipeline_monitor"
  "pipeline_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
