# Empty compiler generated dependencies file for pipeline_monitor.
# This may be replaced when dependencies are built.
