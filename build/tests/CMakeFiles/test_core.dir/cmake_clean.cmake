file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_affinity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_affinity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_patterns.cpp.o"
  "CMakeFiles/test_core.dir/core/test_patterns.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sim_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sim_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_stress.cpp.o"
  "CMakeFiles/test_core.dir/core/test_stress.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sync.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sync.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_taskfn.cpp.o"
  "CMakeFiles/test_core.dir/core/test_taskfn.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_thread_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_thread_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
