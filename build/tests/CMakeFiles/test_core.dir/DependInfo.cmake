
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_affinity.cpp" "tests/CMakeFiles/test_core.dir/core/test_affinity.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_affinity.cpp.o.d"
  "/root/repo/tests/core/test_patterns.cpp" "tests/CMakeFiles/test_core.dir/core/test_patterns.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_patterns.cpp.o.d"
  "/root/repo/tests/core/test_runtime.cpp" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "/root/repo/tests/core/test_sim_engine.cpp" "tests/CMakeFiles/test_core.dir/core/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sim_engine.cpp.o.d"
  "/root/repo/tests/core/test_stress.cpp" "tests/CMakeFiles/test_core.dir/core/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stress.cpp.o.d"
  "/root/repo/tests/core/test_sync.cpp" "tests/CMakeFiles/test_core.dir/core/test_sync.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sync.cpp.o.d"
  "/root/repo/tests/core/test_taskfn.cpp" "tests/CMakeFiles/test_core.dir/core/test_taskfn.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_taskfn.cpp.o.d"
  "/root/repo/tests/core/test_thread_engine.cpp" "tests/CMakeFiles/test_core.dir/core/test_thread_engine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_thread_engine.cpp.o.d"
  "/root/repo/tests/core/test_trace.cpp" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/cool_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cool_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
