file(REMOVE_RECURSE
  "CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_coherence_property.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_coherence_property.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_directory.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_directory.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_memsystem.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_memsystem.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_pagemap.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_pagemap.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_prefetch.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_prefetch.cpp.o.d"
  "test_memsim"
  "test_memsim.pdb"
  "test_memsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
