
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_bitops.cpp" "tests/CMakeFiles/test_common.dir/common/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_bitops.cpp.o.d"
  "/root/repo/tests/common/test_intrusive_list.cpp" "tests/CMakeFiles/test_common.dir/common/test_intrusive_list.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_intrusive_list.cpp.o.d"
  "/root/repo/tests/common/test_options.cpp" "tests/CMakeFiles/test_common.dir/common/test_options.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_options.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/cool_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cool_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
