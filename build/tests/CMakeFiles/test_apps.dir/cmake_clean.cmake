file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_barneshut.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_barneshut.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_cholesky.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_cholesky.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_gauss.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_gauss.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_locusroute.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_locusroute.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_ocean.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_ocean.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_synth.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_synth.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
