file(REMOVE_RECURSE
  "CMakeFiles/cool_topology.dir/machine.cpp.o"
  "CMakeFiles/cool_topology.dir/machine.cpp.o.d"
  "libcool_topology.a"
  "libcool_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
