# Empty dependencies file for cool_topology.
# This may be replaced when dependencies are built.
