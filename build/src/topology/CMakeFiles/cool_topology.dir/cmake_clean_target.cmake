file(REMOVE_RECURSE
  "libcool_topology.a"
)
