
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/cool_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/cool_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/memsystem.cpp" "src/memsim/CMakeFiles/cool_memsim.dir/memsystem.cpp.o" "gcc" "src/memsim/CMakeFiles/cool_memsim.dir/memsystem.cpp.o.d"
  "/root/repo/src/memsim/pagemap.cpp" "src/memsim/CMakeFiles/cool_memsim.dir/pagemap.cpp.o" "gcc" "src/memsim/CMakeFiles/cool_memsim.dir/pagemap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
