file(REMOVE_RECURSE
  "libcool_memsim.a"
)
