# Empty compiler generated dependencies file for cool_memsim.
# This may be replaced when dependencies are built.
