file(REMOVE_RECURSE
  "CMakeFiles/cool_memsim.dir/cache.cpp.o"
  "CMakeFiles/cool_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/cool_memsim.dir/memsystem.cpp.o"
  "CMakeFiles/cool_memsim.dir/memsystem.cpp.o.d"
  "CMakeFiles/cool_memsim.dir/pagemap.cpp.o"
  "CMakeFiles/cool_memsim.dir/pagemap.cpp.o.d"
  "libcool_memsim.a"
  "libcool_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
