
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barneshut/barneshut.cpp" "src/apps/CMakeFiles/cool_apps.dir/barneshut/barneshut.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/barneshut/barneshut.cpp.o.d"
  "/root/repo/src/apps/cholesky/block.cpp" "src/apps/CMakeFiles/cool_apps.dir/cholesky/block.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/cholesky/block.cpp.o.d"
  "/root/repo/src/apps/cholesky/panel.cpp" "src/apps/CMakeFiles/cool_apps.dir/cholesky/panel.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/cholesky/panel.cpp.o.d"
  "/root/repo/src/apps/common/harness.cpp" "src/apps/CMakeFiles/cool_apps.dir/common/harness.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/common/harness.cpp.o.d"
  "/root/repo/src/apps/gauss/gauss.cpp" "src/apps/CMakeFiles/cool_apps.dir/gauss/gauss.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/gauss/gauss.cpp.o.d"
  "/root/repo/src/apps/locusroute/locusroute.cpp" "src/apps/CMakeFiles/cool_apps.dir/locusroute/locusroute.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/locusroute/locusroute.cpp.o.d"
  "/root/repo/src/apps/ocean/ocean.cpp" "src/apps/CMakeFiles/cool_apps.dir/ocean/ocean.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/ocean/ocean.cpp.o.d"
  "/root/repo/src/apps/synth/multiobj.cpp" "src/apps/CMakeFiles/cool_apps.dir/synth/multiobj.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/synth/multiobj.cpp.o.d"
  "/root/repo/src/apps/synth/taskmix.cpp" "src/apps/CMakeFiles/cool_apps.dir/synth/taskmix.cpp.o" "gcc" "src/apps/CMakeFiles/cool_apps.dir/synth/taskmix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/cool_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cool_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
