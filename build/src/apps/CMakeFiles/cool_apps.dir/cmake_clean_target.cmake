file(REMOVE_RECURSE
  "libcool_apps.a"
)
