# Empty compiler generated dependencies file for cool_apps.
# This may be replaced when dependencies are built.
