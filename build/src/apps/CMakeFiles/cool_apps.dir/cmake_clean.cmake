file(REMOVE_RECURSE
  "CMakeFiles/cool_apps.dir/barneshut/barneshut.cpp.o"
  "CMakeFiles/cool_apps.dir/barneshut/barneshut.cpp.o.d"
  "CMakeFiles/cool_apps.dir/cholesky/block.cpp.o"
  "CMakeFiles/cool_apps.dir/cholesky/block.cpp.o.d"
  "CMakeFiles/cool_apps.dir/cholesky/panel.cpp.o"
  "CMakeFiles/cool_apps.dir/cholesky/panel.cpp.o.d"
  "CMakeFiles/cool_apps.dir/common/harness.cpp.o"
  "CMakeFiles/cool_apps.dir/common/harness.cpp.o.d"
  "CMakeFiles/cool_apps.dir/gauss/gauss.cpp.o"
  "CMakeFiles/cool_apps.dir/gauss/gauss.cpp.o.d"
  "CMakeFiles/cool_apps.dir/locusroute/locusroute.cpp.o"
  "CMakeFiles/cool_apps.dir/locusroute/locusroute.cpp.o.d"
  "CMakeFiles/cool_apps.dir/ocean/ocean.cpp.o"
  "CMakeFiles/cool_apps.dir/ocean/ocean.cpp.o.d"
  "CMakeFiles/cool_apps.dir/synth/multiobj.cpp.o"
  "CMakeFiles/cool_apps.dir/synth/multiobj.cpp.o.d"
  "CMakeFiles/cool_apps.dir/synth/taskmix.cpp.o"
  "CMakeFiles/cool_apps.dir/synth/taskmix.cpp.o.d"
  "libcool_apps.a"
  "libcool_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
