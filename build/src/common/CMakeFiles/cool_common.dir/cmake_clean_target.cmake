file(REMOVE_RECURSE
  "libcool_common.a"
)
