file(REMOVE_RECURSE
  "CMakeFiles/cool_common.dir/options.cpp.o"
  "CMakeFiles/cool_common.dir/options.cpp.o.d"
  "CMakeFiles/cool_common.dir/table.cpp.o"
  "CMakeFiles/cool_common.dir/table.cpp.o.d"
  "libcool_common.a"
  "libcool_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
