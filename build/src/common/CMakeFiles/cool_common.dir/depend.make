# Empty dependencies file for cool_common.
# This may be replaced when dependencies are built.
