file(REMOVE_RECURSE
  "CMakeFiles/cool_sched.dir/queues.cpp.o"
  "CMakeFiles/cool_sched.dir/queues.cpp.o.d"
  "CMakeFiles/cool_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cool_sched.dir/scheduler.cpp.o.d"
  "libcool_sched.a"
  "libcool_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
