
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/queues.cpp" "src/sched/CMakeFiles/cool_sched.dir/queues.cpp.o" "gcc" "src/sched/CMakeFiles/cool_sched.dir/queues.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/cool_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/cool_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
