# Empty compiler generated dependencies file for cool_sched.
# This may be replaced when dependencies are built.
