file(REMOVE_RECURSE
  "libcool_sched.a"
)
