
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/cool_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/cool_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/sim_engine.cpp" "src/core/CMakeFiles/cool_core.dir/sim_engine.cpp.o" "gcc" "src/core/CMakeFiles/cool_core.dir/sim_engine.cpp.o.d"
  "/root/repo/src/core/sync.cpp" "src/core/CMakeFiles/cool_core.dir/sync.cpp.o" "gcc" "src/core/CMakeFiles/cool_core.dir/sync.cpp.o.d"
  "/root/repo/src/core/thread_engine.cpp" "src/core/CMakeFiles/cool_core.dir/thread_engine.cpp.o" "gcc" "src/core/CMakeFiles/cool_core.dir/thread_engine.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/cool_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/cool_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/cool_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cool_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
