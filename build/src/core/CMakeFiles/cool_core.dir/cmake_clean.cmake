file(REMOVE_RECURSE
  "CMakeFiles/cool_core.dir/runtime.cpp.o"
  "CMakeFiles/cool_core.dir/runtime.cpp.o.d"
  "CMakeFiles/cool_core.dir/sim_engine.cpp.o"
  "CMakeFiles/cool_core.dir/sim_engine.cpp.o.d"
  "CMakeFiles/cool_core.dir/sync.cpp.o"
  "CMakeFiles/cool_core.dir/sync.cpp.o.d"
  "CMakeFiles/cool_core.dir/thread_engine.cpp.o"
  "CMakeFiles/cool_core.dir/thread_engine.cpp.o.d"
  "CMakeFiles/cool_core.dir/trace.cpp.o"
  "CMakeFiles/cool_core.dir/trace.cpp.o.d"
  "libcool_core.a"
  "libcool_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cool_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
