# Empty dependencies file for abl_queue_array.
# This may be replaced when dependencies are built.
