file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_array.dir/abl_queue_array.cpp.o"
  "CMakeFiles/abl_queue_array.dir/abl_queue_array.cpp.o.d"
  "abl_queue_array"
  "abl_queue_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
