# Empty dependencies file for fig06_ocean_speedup.
# This may be replaced when dependencies are built.
