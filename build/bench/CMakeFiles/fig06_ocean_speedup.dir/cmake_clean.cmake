file(REMOVE_RECURSE
  "CMakeFiles/fig06_ocean_speedup.dir/fig06_ocean_speedup.cpp.o"
  "CMakeFiles/fig06_ocean_speedup.dir/fig06_ocean_speedup.cpp.o.d"
  "fig06_ocean_speedup"
  "fig06_ocean_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ocean_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
