file(REMOVE_RECURSE
  "CMakeFiles/fig14_panel_speedup.dir/fig14_panel_speedup.cpp.o"
  "CMakeFiles/fig14_panel_speedup.dir/fig14_panel_speedup.cpp.o.d"
  "fig14_panel_speedup"
  "fig14_panel_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_panel_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
