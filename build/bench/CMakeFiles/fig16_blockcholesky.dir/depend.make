# Empty dependencies file for fig16_blockcholesky.
# This may be replaced when dependencies are built.
