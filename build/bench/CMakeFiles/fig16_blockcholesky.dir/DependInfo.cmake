
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_blockcholesky.cpp" "bench/CMakeFiles/fig16_blockcholesky.dir/fig16_blockcholesky.cpp.o" "gcc" "bench/CMakeFiles/fig16_blockcholesky.dir/fig16_blockcholesky.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cool_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/cool_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cool_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cool_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
