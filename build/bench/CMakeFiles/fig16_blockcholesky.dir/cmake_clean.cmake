file(REMOVE_RECURSE
  "CMakeFiles/fig16_blockcholesky.dir/fig16_blockcholesky.cpp.o"
  "CMakeFiles/fig16_blockcholesky.dir/fig16_blockcholesky.cpp.o.d"
  "fig16_blockcholesky"
  "fig16_blockcholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_blockcholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
