file(REMOVE_RECURSE
  "CMakeFiles/abl_steal_policy.dir/abl_steal_policy.cpp.o"
  "CMakeFiles/abl_steal_policy.dir/abl_steal_policy.cpp.o.d"
  "abl_steal_policy"
  "abl_steal_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_steal_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
