# Empty compiler generated dependencies file for abl_steal_policy.
# This may be replaced when dependencies are built.
