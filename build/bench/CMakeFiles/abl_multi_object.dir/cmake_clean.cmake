file(REMOVE_RECURSE
  "CMakeFiles/abl_multi_object.dir/abl_multi_object.cpp.o"
  "CMakeFiles/abl_multi_object.dir/abl_multi_object.cpp.o.d"
  "abl_multi_object"
  "abl_multi_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
