# Empty compiler generated dependencies file for abl_multi_object.
# This may be replaced when dependencies are built.
