# Empty compiler generated dependencies file for fig03_gauss_affinity.
# This may be replaced when dependencies are built.
