file(REMOVE_RECURSE
  "CMakeFiles/fig03_gauss_affinity.dir/fig03_gauss_affinity.cpp.o"
  "CMakeFiles/fig03_gauss_affinity.dir/fig03_gauss_affinity.cpp.o.d"
  "fig03_gauss_affinity"
  "fig03_gauss_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_gauss_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
