file(REMOVE_RECURSE
  "CMakeFiles/fig07_ocean_misses.dir/fig07_ocean_misses.cpp.o"
  "CMakeFiles/fig07_ocean_misses.dir/fig07_ocean_misses.cpp.o.d"
  "fig07_ocean_misses"
  "fig07_ocean_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ocean_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
