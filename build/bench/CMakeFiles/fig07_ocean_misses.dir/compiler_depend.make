# Empty compiler generated dependencies file for fig07_ocean_misses.
# This may be replaced when dependencies are built.
