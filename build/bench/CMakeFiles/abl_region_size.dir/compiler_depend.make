# Empty compiler generated dependencies file for abl_region_size.
# This may be replaced when dependencies are built.
