file(REMOVE_RECURSE
  "CMakeFiles/fig11_locusroute_misses.dir/fig11_locusroute_misses.cpp.o"
  "CMakeFiles/fig11_locusroute_misses.dir/fig11_locusroute_misses.cpp.o.d"
  "fig11_locusroute_misses"
  "fig11_locusroute_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_locusroute_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
