file(REMOVE_RECURSE
  "CMakeFiles/abl_latency_ratio.dir/abl_latency_ratio.cpp.o"
  "CMakeFiles/abl_latency_ratio.dir/abl_latency_ratio.cpp.o.d"
  "abl_latency_ratio"
  "abl_latency_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_latency_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
