# Empty dependencies file for abl_latency_ratio.
# This may be replaced when dependencies are built.
