file(REMOVE_RECURSE
  "CMakeFiles/fig15_panel_misses.dir/fig15_panel_misses.cpp.o"
  "CMakeFiles/fig15_panel_misses.dir/fig15_panel_misses.cpp.o.d"
  "fig15_panel_misses"
  "fig15_panel_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_panel_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
