# Empty compiler generated dependencies file for fig15_panel_misses.
# This may be replaced when dependencies are built.
