# Empty dependencies file for fig10_locusroute_speedup.
# This may be replaced when dependencies are built.
