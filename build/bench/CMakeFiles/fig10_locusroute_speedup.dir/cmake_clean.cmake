file(REMOVE_RECURSE
  "CMakeFiles/fig10_locusroute_speedup.dir/fig10_locusroute_speedup.cpp.o"
  "CMakeFiles/fig10_locusroute_speedup.dir/fig10_locusroute_speedup.cpp.o.d"
  "fig10_locusroute_speedup"
  "fig10_locusroute_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_locusroute_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
