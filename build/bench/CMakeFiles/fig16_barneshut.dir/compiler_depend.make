# Empty compiler generated dependencies file for fig16_barneshut.
# This may be replaced when dependencies are built.
