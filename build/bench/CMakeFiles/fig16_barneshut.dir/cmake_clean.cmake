file(REMOVE_RECURSE
  "CMakeFiles/fig16_barneshut.dir/fig16_barneshut.cpp.o"
  "CMakeFiles/fig16_barneshut.dir/fig16_barneshut.cpp.o.d"
  "fig16_barneshut"
  "fig16_barneshut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_barneshut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
