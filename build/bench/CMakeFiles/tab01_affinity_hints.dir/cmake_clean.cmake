file(REMOVE_RECURSE
  "CMakeFiles/tab01_affinity_hints.dir/tab01_affinity_hints.cpp.o"
  "CMakeFiles/tab01_affinity_hints.dir/tab01_affinity_hints.cpp.o.d"
  "tab01_affinity_hints"
  "tab01_affinity_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_affinity_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
