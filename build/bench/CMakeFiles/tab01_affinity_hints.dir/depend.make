# Empty dependencies file for tab01_affinity_hints.
# This may be replaced when dependencies are built.
