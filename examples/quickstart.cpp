// Quickstart — the COOL model in ~60 lines.
//
// Distribute an array across processor memories, spawn one task per chunk
// with OBJECT affinity (each task runs where its chunk lives), wait for them
// with a waitfor group, and read the DASH performance counters.
//
//   $ ./quickstart [--procs=32] [--chunks=64]
#include <cstdio>

#include "common/options.hpp"
#include "core/cool.hpp"

using namespace cool;

namespace {

// A COOL "parallel function": sums one chunk into its first element.
TaskFn sum_chunk(double* chunk, std::size_t n) {
  auto& c = co_await self();          // execution context
  c.read(chunk, n * sizeof(double));  // simulated memory references
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += chunk[i];
  chunk[0] = total;                   // real computation, real result
  c.write(chunk, sizeof(double));
  c.work(n * 4);                      // ~1 flop per element
}

TaskFn main_task(Runtime& rt, double** chunks, int n_chunks,
                 std::size_t chunk_len) {
  auto& c = co_await self();
  TaskGroup waitfor;  // the paper's `waitfor { ... }` scope
  for (int i = 0; i < n_chunks; ++i) {
    // OBJECT affinity: run where chunk i is homed (round-robin distributed).
    c.spawn(Affinity::object(chunks[i]), waitfor,
            sum_chunk(chunks[i], chunk_len));
  }
  co_await c.wait(waitfor);
  (void)rt;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("quickstart", "COOL quickstart: distributed array sum");
  opt.add_int("procs", 32, "simulated processors");
  opt.add_int("chunks", 64, "array chunks (one task each)");
  opt.add_int("chunk-kb", 32, "chunk size in KiB");
  if (!opt.parse(argc, argv)) return 0;

  SystemConfig cfg;  // defaults: simulated 32-processor DASH
  cfg.machine = topo::MachineConfig::dash(
      static_cast<std::uint32_t>(opt.get_int("procs")));
  Runtime rt(cfg);

  const int n_chunks = static_cast<int>(opt.get_int("chunks"));
  const std::size_t chunk_len =
      static_cast<std::size_t>(opt.get_int("chunk-kb")) * 1024 / sizeof(double);

  std::vector<double*> chunks;
  double expect = 0.0;
  for (int i = 0; i < n_chunks; ++i) {
    // Placed allocation: chunk i in processor (i mod P)'s local memory.
    chunks.push_back(rt.alloc_array<double>(chunk_len, i));
    for (std::size_t j = 0; j < chunk_len; ++j) {
      chunks[static_cast<std::size_t>(i)][j] = 0.001 * static_cast<double>(j % 97);
      expect += chunks[static_cast<std::size_t>(i)][j];
    }
  }

  rt.run(main_task(rt, chunks.data(), n_chunks, chunk_len));

  double got = 0.0;
  for (double* chunk : chunks) got += chunk[0];

  const auto mem = rt.monitor()->total();
  std::printf("sum = %.3f (expected %.3f)\n", got, expect);
  std::printf("completed in %llu simulated cycles on %u processors\n",
              static_cast<unsigned long long>(rt.sim_time()),
              rt.machine().n_procs);
  std::printf("memory: %llu accesses, %llu misses, %.1f%% serviced locally\n",
              static_cast<unsigned long long>(mem.accesses()),
              static_cast<unsigned long long>(mem.misses()),
              mem.misses() ? 100.0 * static_cast<double>(mem.local_misses()) /
                                 static_cast<double>(mem.misses())
                           : 0.0);
  std::printf("scheduler: %llu tasks spawned, %llu stolen\n",
              static_cast<unsigned long long>(rt.sched_stats().spawned),
              static_cast<unsigned long long>(rt.sched_stats().tasks_stolen));
  return 0;
}
