// Pipeline monitor — COOL's monitor-style synchronisation (§2): mutex
// member functions and condition variables, used to build a bounded-buffer
// pipeline of three stages (produce → transform → consume) with backpressure.
//
// This exercises the concurrency features the case studies use only lightly,
// and runs under BOTH engines: the deterministic simulator and real threads
// (--threads), producing the same totals.
//
// It doubles as the observability demo: --trace records task spans into the
// obs ring buffers (blocked spans show every monitor contention) and
// --chrome-out writes a Chrome-trace JSON you can load in chrome://tracing
// or Perfetto; the obs metrics snapshot prints either way.
//
//   $ ./pipeline_monitor [--items=500] [--threads] [--trace]
//                        [--chrome-out=pipeline.json]
#include <cstdio>
#include <fstream>

#include "common/options.hpp"
#include "core/cool.hpp"
#include "obs/trace.hpp"

using namespace cool;

namespace {

/// A bounded single-slot channel: the paper's monitor pattern (a mutex
/// object + condition variables for "not empty" / "not full").
struct Channel {
  Mutex mu;
  Cond nonempty;
  Cond nonfull;
  bool full = false;
  bool closed = false;
  long value = 0;
};

TaskFn producer(Channel* out, int items) {
  auto& c = co_await self();
  for (int i = 1; i <= items; ++i) {
    auto g = co_await c.lock(out->mu);
    while (out->full) co_await c.wait(out->nonfull, out->mu);
    out->value = i;
    out->full = true;
    c.work(50);
    out->nonempty.signal(c);
  }
  auto g = co_await c.lock(out->mu);
  out->closed = true;
  out->nonempty.broadcast(c);
}

TaskFn transformer(Channel* in, Channel* out) {
  auto& c = co_await self();
  for (;;) {
    long v = 0;
    {
      auto g = co_await c.lock(in->mu);
      while (!in->full && !in->closed) co_await c.wait(in->nonempty, in->mu);
      if (!in->full && in->closed) break;
      v = in->value;
      in->full = false;
      in->nonfull.signal(c);
    }
    c.work(200);  // "transform"
    v = v * 2 + 1;
    {
      auto g = co_await c.lock(out->mu);
      while (out->full) co_await c.wait(out->nonfull, out->mu);
      out->value = v;
      out->full = true;
      out->nonempty.signal(c);
    }
  }
  auto g = co_await c.lock(out->mu);
  out->closed = true;
  out->nonempty.broadcast(c);
}

TaskFn consumer(Channel* in, long* sum, long* count) {
  auto& c = co_await self();
  for (;;) {
    auto g = co_await c.lock(in->mu);
    while (!in->full && !in->closed) co_await c.wait(in->nonempty, in->mu);
    if (!in->full && in->closed) break;
    *sum += in->value;
    ++*count;
    in->full = false;
    in->nonfull.signal(c);
  }
}

TaskFn run_pipeline(Channel* a, Channel* b, int items, long* sum, long* count) {
  auto& c = co_await self();
  TaskGroup waitfor;
  c.spawn(Affinity::processor(0), waitfor, producer(a, items));
  c.spawn(Affinity::processor(1), waitfor, transformer(a, b));
  c.spawn(Affinity::processor(2), waitfor, consumer(b, sum, count));
  co_await c.wait(waitfor);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("pipeline_monitor",
                    "monitor-synchronised three-stage pipeline");
  opt.add_int("items", 500, "items to push through the pipeline");
  opt.add_flag("threads", "run on real threads instead of the simulator");
  opt.add_flag("trace", "record task spans into the obs ring buffers");
  opt.add_string("chrome-out", "",
                 "write a Chrome-trace JSON here (implies --trace)");
  if (!opt.parse(argc, argv)) return 0;

  SystemConfig cfg;
  cfg.mode = opt.flag("threads") ? SystemConfig::Mode::kThreads
                                 : SystemConfig::Mode::kSim;
  cfg.machine = topo::MachineConfig::dash(4);
  cfg.trace = opt.flag("trace") || !opt.get_string("chrome-out").empty();
  Runtime rt(cfg);

  const int items = static_cast<int>(opt.get_int("items"));
  Channel a, b;
  long sum = 0;
  long count = 0;
  rt.run(run_pipeline(&a, &b, items, &sum, &count));

  // Each item i becomes 2i+1; sum = 2*(n(n+1)/2) + n = n(n+2).
  const long expect = static_cast<long>(items) * (items + 2);
  std::printf("engine: %s\n", opt.flag("threads") ? "threads" : "simulator");
  std::printf("consumed %ld items, sum %ld (expected %ld) — %s\n", count, sum,
              expect, sum == expect ? "ok" : "MISMATCH");
  if (!opt.flag("threads")) {
    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(rt.sim_time()));
  }

  // Metrics come for free from the runtime's registry; the monitor pattern
  // shows up as blocked spans and steals.
  const auto snap = rt.obs_snapshot();
  const auto val = [&](const char* k) -> unsigned long long {
    const auto it = snap.values.find(k);
    return it == snap.values.end() ? 0 : it->second;
  };
  std::printf("obs: tasks=%llu steals=%llu resumes=%llu\n",
              val("tasks.completed"), val("sched.steals"),
              val("sched.resumes"));

  if (cfg.trace) {
    std::uint64_t blocked = 0;
    for (const auto& e : rt.trace_events()) {
      if (e.kind == obs::EventKind::kTaskSpan &&
          obs::span_end(e.flags) == obs::kSpanBlocked) {
        ++blocked;
      }
    }
    std::printf("trace: %zu events, %llu blocked spans (monitor contention)\n",
                rt.trace_events().size(),
                static_cast<unsigned long long>(blocked));
  }
  const std::string& chrome = opt.get_string("chrome-out");
  if (!chrome.empty()) {
    std::ofstream out(chrome, std::ios::binary);
    out << rt.chrome_trace() << "\n";
    std::printf("wrote %s (load in chrome://tracing)\n", chrome.c_str());
  }
  return 0;
}
