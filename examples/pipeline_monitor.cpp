// Pipeline monitor — COOL's monitor-style synchronisation (§2): mutex
// member functions and condition variables, used to build a bounded-buffer
// pipeline of three stages (produce → transform → consume) with backpressure.
//
// This exercises the concurrency features the case studies use only lightly,
// and runs under BOTH engines: the deterministic simulator and real threads
// (--threads), producing the same totals.
//
//   $ ./pipeline_monitor [--items=500] [--threads]
#include <cstdio>

#include "common/options.hpp"
#include "core/cool.hpp"

using namespace cool;

namespace {

/// A bounded single-slot channel: the paper's monitor pattern (a mutex
/// object + condition variables for "not empty" / "not full").
struct Channel {
  Mutex mu;
  Cond nonempty;
  Cond nonfull;
  bool full = false;
  bool closed = false;
  long value = 0;
};

TaskFn producer(Channel* out, int items) {
  auto& c = co_await self();
  for (int i = 1; i <= items; ++i) {
    auto g = co_await c.lock(out->mu);
    while (out->full) co_await c.wait(out->nonfull, out->mu);
    out->value = i;
    out->full = true;
    c.work(50);
    out->nonempty.signal(c);
  }
  auto g = co_await c.lock(out->mu);
  out->closed = true;
  out->nonempty.broadcast(c);
}

TaskFn transformer(Channel* in, Channel* out) {
  auto& c = co_await self();
  for (;;) {
    long v = 0;
    {
      auto g = co_await c.lock(in->mu);
      while (!in->full && !in->closed) co_await c.wait(in->nonempty, in->mu);
      if (!in->full && in->closed) break;
      v = in->value;
      in->full = false;
      in->nonfull.signal(c);
    }
    c.work(200);  // "transform"
    v = v * 2 + 1;
    {
      auto g = co_await c.lock(out->mu);
      while (out->full) co_await c.wait(out->nonfull, out->mu);
      out->value = v;
      out->full = true;
      out->nonempty.signal(c);
    }
  }
  auto g = co_await c.lock(out->mu);
  out->closed = true;
  out->nonempty.broadcast(c);
}

TaskFn consumer(Channel* in, long* sum, long* count) {
  auto& c = co_await self();
  for (;;) {
    auto g = co_await c.lock(in->mu);
    while (!in->full && !in->closed) co_await c.wait(in->nonempty, in->mu);
    if (!in->full && in->closed) break;
    *sum += in->value;
    ++*count;
    in->full = false;
    in->nonfull.signal(c);
  }
}

TaskFn run_pipeline(Channel* a, Channel* b, int items, long* sum, long* count) {
  auto& c = co_await self();
  TaskGroup waitfor;
  c.spawn(Affinity::processor(0), waitfor, producer(a, items));
  c.spawn(Affinity::processor(1), waitfor, transformer(a, b));
  c.spawn(Affinity::processor(2), waitfor, consumer(b, sum, count));
  co_await c.wait(waitfor);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("pipeline_monitor",
                    "monitor-synchronised three-stage pipeline");
  opt.add_int("items", 500, "items to push through the pipeline");
  opt.add_flag("threads", "run on real threads instead of the simulator");
  if (!opt.parse(argc, argv)) return 0;

  SystemConfig cfg;
  cfg.mode = opt.flag("threads") ? SystemConfig::Mode::kThreads
                                 : SystemConfig::Mode::kSim;
  cfg.machine = topo::MachineConfig::dash(4);
  Runtime rt(cfg);

  const int items = static_cast<int>(opt.get_int("items"));
  Channel a, b;
  long sum = 0;
  long count = 0;
  rt.run(run_pipeline(&a, &b, items, &sum, &count));

  // Each item i becomes 2i+1; sum = 2*(n(n+1)/2) + n = n(n+2).
  const long expect = static_cast<long>(items) * (items + 2);
  std::printf("engine: %s\n", opt.flag("threads") ? "threads" : "simulator");
  std::printf("consumed %ld items, sum %ld (expected %ld) — %s\n", count, sum,
              expect, sum == expect ? "ok" : "MISMATCH");
  if (!opt.flag("threads")) {
    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(rt.sim_time()));
  }
  return 0;
}
