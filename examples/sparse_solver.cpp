// Sparse solver — the paper's Panel Cholesky scenario (§6.3) as an
// application: factor a synthetic sparse SPD structure and show how the
// Figure 13 affinity hints and panel distribution change the execution.
//
//   $ ./sparse_solver [--procs=32] [--panels=192]
#include <cstdio>

#include "apps/cholesky/panel.hpp"
#include "common/options.hpp"
#include "common/table.hpp"

using namespace cool;
using namespace cool::apps::cholesky;

int main(int argc, char** argv) {
  util::Options opt("sparse_solver", "sparse panel Cholesky factorization");
  opt.add_int("procs", 32, "simulated processors");
  opt.add_int("panels", 192, "panels in the synthetic structure");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  PanelConfig cfg;
  cfg.n_panels = static_cast<int>(opt.get_int("panels"));

  const double expect = panel_serial_checksum(cfg);
  std::printf("factoring %d panels on %u processors (serial checksum %.0f)\n\n",
              cfg.n_panels, procs, expect);

  util::Table t({"strategy", "cycles(M)", "checksum-ok", "local-miss%",
                 "steals", "tasks"});
  for (PanelVariant v :
       {PanelVariant::kBase, PanelVariant::kDistr, PanelVariant::kDistrAff,
        PanelVariant::kDistrAffCluster}) {
    PanelConfig c = cfg;
    c.variant = v;
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(procs);
    sc.policy = panel_policy_for(v, procs);
    Runtime rt(sc);
    const PanelResult r = run_panel(rt, c);
    t.row()
        .cell(panel_variant_name(v))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e6, 2)
        .cell(r.checksum == expect ? "yes" : "NO")
        .cell(r.run.mem.misses()
                  ? 100.0 * static_cast<double>(r.run.mem.local_misses()) /
                        static_cast<double>(r.run.mem.misses())
                  : 0.0,
              1)
        .cell(r.run.sched.steals)
        .cell(r.run.tasks);
  }
  t.print();
  std::printf(
      "\nEvery strategy computes the identical factor (integer-exact math);\n"
      "the hints only decide where updates execute and where panels live.\n");
  return 0;
}
