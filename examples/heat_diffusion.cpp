// Heat diffusion — a standalone grid solver in the style of the paper's
// Ocean case study (§6.1, Figure 5).
//
// A 2-D plate is partitioned into row-strip regions. Each timestep runs a
// Jacobi relaxation as one parallel grid operation per region, closed by a
// waitfor. The regions are explicitly distributed (`migrate`, Figure 5's
// distribute()) so default OBJECT affinity collocates every region task with
// its strip — the example prints how much of the memory traffic stayed local
// with and without the distribution step.
//
//   $ ./heat_diffusion [--n=192] [--steps=8] [--no-distribute]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "core/cool.hpp"

using namespace cool;

namespace {

struct Plate {
  int n = 0;
  int regions = 0;
  double* cur = nullptr;   // current temperatures
  double* next = nullptr;  // next-step temperatures

  [[nodiscard]] int row_begin(int r) const { return r * n / regions; }
  [[nodiscard]] int row_end(int r) const { return (r + 1) * n / regions; }
};

TaskFn relax_region(Plate* p, int r) {
  auto& c = co_await self();
  const int n = p->n;
  const int r0 = p->row_begin(r);
  const int r1 = p->row_end(r);
  const int lo = r0 > 0 ? r0 - 1 : 0;
  const int hi = r1 < n ? r1 + 1 : n;

  c.read(&p->cur[static_cast<std::size_t>(lo) * n],
         static_cast<std::size_t>(hi - lo) * n * sizeof(double));
  c.write(&p->next[static_cast<std::size_t>(r0) * n],
          static_cast<std::size_t>(r1 - r0) * n * sizeof(double));

  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::size_t at = static_cast<std::size_t>(i) * n + j;
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        p->next[at] = p->cur[at];  // fixed boundary temperature
      } else {
        p->next[at] = 0.25 * (p->cur[at - static_cast<std::size_t>(n)] +
                              p->cur[at + static_cast<std::size_t>(n)] +
                              p->cur[at - 1] + p->cur[at + 1]);
      }
    }
  }
  c.work(static_cast<std::uint64_t>(r1 - r0) * n * 16);
}

TaskFn solve(Plate* p, int steps) {
  auto& c = co_await self();
  for (int s = 0; s < steps; ++s) {
    TaskGroup waitfor;
    for (int r = 0; r < p->regions; ++r) {
      // Default affinity: the task follows the strip it writes.
      c.spawn(Affinity::object(
                  &p->next[static_cast<std::size_t>(p->row_begin(r)) * p->n]),
              waitfor, relax_region(p, r));
    }
    co_await c.wait(waitfor);
    std::swap(p->cur, p->next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("heat_diffusion", "2-D heat diffusion with region affinity");
  opt.add_int("procs", 32, "simulated processors");
  opt.add_int("n", 192, "plate dimension");
  opt.add_int("steps", 8, "timesteps");
  opt.add_flag("no-distribute", "skip the Figure 5 distribute() step");
  opt.add_flag("trace", "print a per-processor execution timeline");
  if (!opt.parse(argc, argv)) return 0;

  SystemConfig cfg;
  cfg.machine = topo::MachineConfig::dash(
      static_cast<std::uint32_t>(opt.get_int("procs")));
  cfg.trace = opt.flag("trace");
  Runtime rt(cfg);

  Plate p;
  p.n = static_cast<int>(opt.get_int("n"));
  p.regions = static_cast<int>(rt.machine().n_procs);
  const std::size_t cells = static_cast<std::size_t>(p.n) * p.n;
  p.cur = rt.alloc_array<double>(cells, 0);
  p.next = rt.alloc_array<double>(cells, 0);

  // Hot left edge, cold elsewhere.
  for (int i = 0; i < p.n; ++i) {
    p.cur[static_cast<std::size_t>(i) * p.n] = 100.0;
    p.next[static_cast<std::size_t>(i) * p.n] = 100.0;
  }

  if (!opt.flag("no-distribute")) {
    // Figure 5's distribute(): strip r of both grids to processor r.
    for (int r = 0; r < p.regions; ++r) {
      const int r0 = p.row_begin(r);
      const std::size_t bytes = static_cast<std::size_t>(p.row_end(r) - r0) *
                                p.n * sizeof(double);
      rt.migrate(&p.cur[static_cast<std::size_t>(r0) * p.n], r, bytes);
      rt.migrate(&p.next[static_cast<std::size_t>(r0) * p.n], r, bytes);
    }
  }

  rt.run(solve(&p, static_cast<int>(opt.get_int("steps"))));

  double total_heat = 0.0;
  for (std::size_t i = 0; i < cells; ++i) total_heat += p.cur[i];
  const auto mem = rt.monitor()->total();
  std::printf("mean temperature after %lld steps: %.4f\n",
              static_cast<long long>(opt.get_int("steps")),
              total_heat / static_cast<double>(cells));
  std::printf("%llu cycles; %.1f%% of misses serviced in local memory%s\n",
              static_cast<unsigned long long>(rt.sim_time()),
              mem.misses() ? 100.0 * static_cast<double>(mem.local_misses()) /
                                 static_cast<double>(mem.misses())
                           : 0.0,
              opt.flag("no-distribute") ? " (no distribution)" : "");
  if (opt.flag("trace")) {
    std::printf("\n%s", render_trace_report(rt.trace(), rt.machine().n_procs,
                                             rt.sim_time(), 72)
                             .c_str());
  }
  return 0;
}
