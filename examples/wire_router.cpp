// Wire router — the paper's LocusRoute scenario (§6.2) as an application:
// route a synthetic standard-cell circuit and compare the three scheduling
// strategies of Figure 10 on route quality, locality, and completion time.
//
//   $ ./wire_router [--procs=32] [--wires-per-region=96] [--iterations=3]
#include <cstdio>

#include "apps/locusroute/locusroute.hpp"
#include "common/options.hpp"
#include "common/table.hpp"

using namespace cool;
using namespace cool::apps::locusroute;

int main(int argc, char** argv) {
  util::Options opt("wire_router", "standard-cell wire routing with affinity");
  opt.add_int("procs", 32, "simulated processors");
  opt.add_int("wires-per-region", 96, "synthetic wires per region");
  opt.add_int("iterations", 3, "rip-up-and-reroute passes");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  Config cfg;
  cfg.wires_per_region = static_cast<int>(opt.get_int("wires-per-region"));
  cfg.iterations = static_cast<int>(opt.get_int("iterations"));

  std::printf("routing %d wires (%u regions) for %d iterations on %u procs\n\n",
              static_cast<int>(procs) * cfg.wires_per_region, procs,
              cfg.iterations, procs);

  util::Table t({"strategy", "cycles(M)", "congestion", "wirelength",
                 "on-region%", "local-miss%"});
  for (Variant v :
       {Variant::kBase, Variant::kAffinity, Variant::kAffinityDistr}) {
    Config c = cfg;
    c.variant = v;
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(procs);
    sc.policy = policy_for(v);
    Runtime rt(sc);
    const Result r = run(rt, c);
    t.row()
        .cell(variant_name(v))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e6, 2)
        .cell(r.total_route_cost)
        .cell(r.total_occupancy)
        .cell(100.0 * r.region_adherence, 1)
        .cell(r.run.mem.misses()
                  ? 100.0 * static_cast<double>(r.run.mem.local_misses()) /
                        static_cast<double>(r.run.mem.misses())
                  : 0.0,
              1);
  }
  t.print();
  std::printf(
      "\nAll strategies route the same circuit; the hints change where wires\n"
      "are scheduled, not what is computed (congestion varies slightly with\n"
      "routing order).\n");
  return 0;
}
