// N-body — the paper's Barnes-Hut scenario (§6.4) as an application: run a
// short gravitational simulation and compare locality-blind scheduling with
// distributed body blocks + OBJECT affinity.
//
//   $ ./nbody [--procs=32] [--bodies=4096] [--steps=2]
#include <cstdio>

#include "apps/barneshut/barneshut.hpp"
#include "common/options.hpp"
#include "common/table.hpp"

using namespace cool;
using namespace cool::apps::barneshut;

int main(int argc, char** argv) {
  util::Options opt("nbody", "Barnes-Hut N-body with body-block affinity");
  opt.add_int("procs", 32, "simulated processors");
  opt.add_int("bodies", 4096, "number of bodies");
  opt.add_int("steps", 2, "timesteps");
  if (!opt.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs"));
  Config cfg;
  cfg.n_bodies = static_cast<int>(opt.get_int("bodies"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));

  std::printf("%d bodies, theta=%.2f, %d steps, %u processors\n\n",
              cfg.n_bodies, cfg.theta, cfg.steps, procs);

  util::Table t({"strategy", "cycles(M)", "force-err%", "kinetic-energy",
                 "local-miss%"});
  for (Variant v : {Variant::kBase, Variant::kDistrAff}) {
    Config c = cfg;
    c.variant = v;
    SystemConfig sc;
    sc.machine = topo::MachineConfig::dash(procs);
    sc.policy = policy_for(v);
    Runtime rt(sc);
    const Result r = run(rt, c);
    t.row()
        .cell(variant_name(v))
        .cell(static_cast<double>(r.run.sim_cycles) / 1e6, 2)
        .cell(100.0 * r.max_force_error, 2)
        .cell(r.energy, 6)
        .cell(r.run.mem.misses()
                  ? 100.0 * static_cast<double>(r.run.mem.local_misses()) /
                        static_cast<double>(r.run.mem.misses())
                  : 0.0,
              1);
  }
  t.print();
  std::printf(
      "\nforce-err%% is the worst-case tree-force error against direct\n"
      "summation on sampled bodies (the theta=%.2f approximation bound).\n",
      cfg.theta);
  return 0;
}
